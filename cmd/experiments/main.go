// Command experiments regenerates the paper's tables and figures as text
// reports.
//
// Usage:
//
//	experiments [-exp all|table1|table2|fig3|fig4|fig5|fig7|fig8|delays|summary]
//	            [-measure N] [-warmup N] [-workloads a,b,c] [-parallel N]
//
// Each report prints the same rows/series the paper reports, normalized the
// same way (per-benchmark vs Baseline_0, geometric means); paper reference
// numbers are attached where the paper states them.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"specsched/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run ("+strings.Join(experiments.Names(), "|")+"|all)")
	measure := flag.Int64("measure", 60000, "measured µ-ops per run")
	warmup := flag.Int64("warmup", 10000, "warmup µ-ops per run")
	workloads := flag.String("workloads", "", "comma-separated workload subset (default: all 36)")
	parallel := flag.Int("parallel", 0, "worker goroutines (default: GOMAXPROCS)")
	flag.Parse()

	opts := experiments.Options{Warmup: *warmup, Measure: *measure, Parallel: *parallel}
	if *workloads != "" {
		opts.Workloads = strings.Split(*workloads, ",")
	}
	r := experiments.NewRunner(opts)

	names := experiments.Names()
	if *exp != "all" {
		names = strings.Split(*exp, ",")
	}
	start := time.Now()
	for _, name := range names {
		out, err := r.Run(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
	fmt.Printf("(completed in %.1fs)\n", time.Since(start).Seconds())
}
