// Command calibrate is the workload calibration harness: it runs every
// workload on one configuration and prints measured vs. paper IPC.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"specsched"
)

func main() {
	cfgName := flag.String("config", "Baseline_0", "preset")
	n := flag.Int64("n", 60000, "measured µ-ops")
	flag.Parse()
	ctx := context.Background()
	for _, w := range specsched.Workloads() {
		r, err := specsched.NewSimulator(
			specsched.WithPreset(*cfgName),
			specsched.WithWorkload(w.Name),
			specsched.WithWarmup(*n/5),
			specsched.WithMeasure(*n),
		).Run(ctx)
		if err != nil {
			fmt.Fprintln(os.Stderr, "calibrate:", err)
			os.Exit(1)
		}
		fmt.Printf("%-11s ipc=%.3f paper=%.3f mpki=%4.1f l1miss=%.3f conf=%5d rpldM=%6d rpldB=%6d late=%d\n",
			w.Name, r.IPC(), w.PaperIPC, r.MPKI(), r.L1MissRate(), r.BankConflicts,
			r.ReplayedMiss, r.ReplayedBank, r.LateOperands)
	}
}
