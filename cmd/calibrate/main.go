// Command calibrate is the workload calibration harness: it runs every
// workload on Baseline_0 and prints measured vs. paper IPC.
package main

import (
	"flag"
	"fmt"

	"specsched/internal/config"
	"specsched/internal/core"
	"specsched/internal/trace"
)

func main() {
	cfgName := flag.String("config", "Baseline_0", "preset")
	n := flag.Int64("n", 60000, "measured µ-ops")
	flag.Parse()
	cfg, err := config.Preset(*cfgName)
	if err != nil {
		panic(err)
	}
	for _, p := range trace.Profiles() {
		g := trace.New(p)
		c := core.MustNew(cfg, g, p.Seed)
		c.SetWorkloadName(p.Name)
		r := c.Run(*n/5, *n)
		fmt.Printf("%-11s ipc=%.3f paper=%.3f mpki=%4.1f l1miss=%.3f conf=%5d rpldM=%6d rpldB=%6d late=%d\n",
			p.Name, r.IPC(), p.PaperIPC, r.MPKI(), r.L1MissRate(), r.BankConflicts, r.ReplayedMiss, r.ReplayedBank, r.LateOperands)
	}
}
