package specsched_test

import (
	"os"
	"testing"
	"time"

	"specsched"
	"specsched/internal/worker"
	"specsched/results"
)

// TestMain installs the worker hook so SweepWorkers tests can re-exec this
// test binary as their cell workers. Without the EnvWorker marker it is a
// no-op and the tests run normally.
func TestMain(m *testing.M) {
	specsched.MaybeWorker()
	os.Exit(m.Run())
}

// runGrid flattens a sweep into CellRef→Run with Elapsed (wall clock, the
// one legitimately nondeterministic field) zeroed for bit comparison.
func runGrid(t *testing.T, opts ...specsched.SweepOption) map[specsched.CellRef]results.Run {
	t.Helper()
	grid, err := specsched.NewSweep(opts...).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[specsched.CellRef]results.Run, len(grid))
	for _, cell := range grid {
		cell.Run.Elapsed = 0
		out[cell.CellRef] = cell.Run
	}
	return out
}

// TestSweepWorkersBitIdentical is the facade-level acceptance test for
// process isolation: the same grid swept with subprocess workers must be
// bit-identical to the in-process sweep — no counter may depend on where a
// cell ran.
func TestSweepWorkersBitIdentical(t *testing.T) {
	want := runGrid(t, sweepOpts(specsched.SweepJobs(2))...)
	got := runGrid(t, sweepOpts(specsched.SweepWorkers(2))...)
	if len(got) != len(want) {
		t.Fatalf("worker sweep produced %d cells, in-process %d", len(got), len(want))
	}
	for ref, w := range want {
		g, ok := got[ref]
		if !ok {
			t.Fatalf("cell %s missing from the worker sweep", ref)
		}
		if g != w {
			t.Fatalf("cell %s differs between worker and in-process sweeps:\n worker     %+v\n in-process %+v", ref, g, w)
		}
	}
}

// TestSweepWorkersCrashRecovery injects a deterministic worker crash into
// every cell's first attempt (the chaos env is inherited by the re-exec'd
// workers) and requires the sweep to converge — via supervisor respawns and
// retry reassignment — on results bit-identical to a crash-free run, with
// the recovery visible in the FailureReport.
func TestSweepWorkersCrashRecovery(t *testing.T) {
	want := runGrid(t, sweepOpts(specsched.SweepJobs(2))...)

	// No explicit SweepRetries: a sweep with workers must default to a
	// retry budget that can absorb the reassignment.
	t.Setenv(worker.EnvChaos, "seed=11,exit=1,maxfaults=1")
	sweep := specsched.NewSweep(sweepOpts(
		specsched.SweepWorkers(2),
		specsched.SweepRetryBackoff(time.Millisecond, 4*time.Millisecond),
	)...)
	grid, err := sweep.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != len(want) {
		t.Fatalf("crash-recovery sweep produced %d cells, want %d", len(grid), len(want))
	}
	for _, cell := range grid {
		cell.Run.Elapsed = 0
		if w := want[cell.CellRef]; cell.Run != w {
			t.Fatalf("cell %s differs after crash recovery:\n got  %+v\n want %+v", cell.CellRef, cell.Run, w)
		}
	}
	fr := sweep.FailureReport()
	if fr.WorkerRestarts == 0 {
		t.Errorf("FailureReport.WorkerRestarts = 0; injected crashes must force respawns (%+v)", fr)
	}
	if fr.WorkerReassigned < len(want) {
		t.Errorf("FailureReport.WorkerReassigned = %d, want >= %d (every cell's first attempt crashed its worker)",
			fr.WorkerReassigned, len(want))
	}
	if fr.Recovered < len(want) {
		t.Errorf("FailureReport.Recovered = %d, want >= %d", fr.Recovered, len(want))
	}
}

// TestSweepSpecWorkers: the workers knob must round-trip through the
// declarative spec like every other axis.
func TestSweepSpecWorkers(t *testing.T) {
	warmup, measure := int64(1000), int64(4000)
	spec := specsched.SweepSpec{
		Configs:   []string{"Baseline_0"},
		Workloads: []string{"gzip"},
		Warmup:    &warmup,
		Measure:   &measure,
		Workers:   3,
	}
	sweep, err := specsched.NewSweepFromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := sweep.Spec().Workers; got != 3 {
		t.Fatalf("Spec().Workers = %d, want 3", got)
	}
	bad := spec
	bad.Workers = -1
	if _, err := specsched.NewSweepFromSpec(bad); err == nil {
		t.Fatal("negative workers validated")
	}
}
