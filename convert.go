package specsched

import (
	"reflect"
	"time"

	"specsched/internal/config"
	"specsched/internal/stats"
	"specsched/internal/traceio"
	"specsched/results"
)

// Scheduler selects the simulator-side wakeup/select implementation. Both
// implementations model the same machine cycle-exactly and produce
// bit-identical statistics; they differ only in simulator speed.
type Scheduler string

const (
	// SchedulerEvent is the event-driven implementation (consumer lists,
	// ready queues, timing wheels) — the default, and the fast one.
	SchedulerEvent Scheduler = "event"
	// SchedulerScan is the legacy per-cycle full-window scan, kept as the
	// differential-testing reference.
	SchedulerScan Scheduler = "scan"
)

// impl maps the public scheduler selector ("" selects the event default)
// to the internal implementation enum.
func (s Scheduler) impl() (config.SchedulerImpl, error) {
	switch s {
	case "", SchedulerEvent:
		return config.SchedEvent, nil
	case SchedulerScan:
		return config.SchedScan, nil
	}
	return 0, wrapErrf(ErrInvalidConfig, "specsched: unknown scheduler %q (want %q or %q)",
		s, SchedulerEvent, SchedulerScan)
}

// runFromStats copies the internal counter record into the public one,
// field by field matched on name. Every field of stats.Run must have an
// identically named and typed counterpart in results.Run (pinned by
// TestRunFieldParity); results.Run may carry extra public-only fields
// (Elapsed).
func runFromStats(sr *stats.Run) results.Run {
	var out results.Run
	ov := reflect.ValueOf(&out).Elem()
	sv := reflect.ValueOf(sr).Elem()
	st := sv.Type()
	for i := 0; i < st.NumField(); i++ {
		ov.FieldByName(st.Field(i).Name).Set(sv.Field(i))
	}
	return out
}

// runFromStatsElapsed is runFromStats plus the wall-clock annotation.
func runFromStatsElapsed(sr *stats.Run, elapsed time.Duration) results.Run {
	out := runFromStats(sr)
	out.Elapsed = elapsed
	return out
}

// traceInfoFromHeader maps the internal trace header onto the public
// TraceInfo record.
func traceInfoFromHeader(h traceio.Header) TraceInfo {
	return TraceInfo{
		Version:       h.Version,
		Generator:     h.Generator,
		UOps:          h.Count,
		Digest:        h.Digest,
		WrongPathSeed: h.WrongPathSeed,
	}
}
